// Command spidersim runs a configurable SpiderNet simulation: it builds a
// power-law IP network with a P2P service overlay on top, replays a stream
// of composite service requests through the BCP protocol (with proactive
// failure recovery under optional churn), and prints summary statistics.
//
// Example:
//
//	spidersim -peers 200 -requests 100 -budget 24 -churn 0.01
//
// Traces written with -trace are deterministic JSONL (gzipped when the path
// ends in .gz); -summarize replays one, and -check verifies the protocol
// invariants either on existing trace files (positional arguments) or on
// the run itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/spec"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Int64("seed", 1, "simulation seed")
		ipNodes   = flag.Int("ipnodes", 2000, "IP-layer nodes")
		peers     = flag.Int("peers", 200, "overlay peers")
		functions = flag.Int("functions", 40, "function catalogue size")
		requests  = flag.Int("requests", 100, "composition requests")
		budget    = flag.Int("budget", 20, "probing budget per request")
		minFuncs  = flag.Int("minfuncs", 2, "min functions per request")
		maxFuncs  = flag.Int("maxfuncs", 4, "max functions per request")
		churn     = flag.Float64("churn", 0, "fraction of peers failing per minute")
		scenario  = flag.String("scenario", "", "stress scenario layered on the workload, e.g. zipf=1.2,diurnal=60s@0.5,flash=fn3:10@30s+20s,churn=0.02@30s+20s")
		duration  = flag.Duration("duration", 5*time.Minute, "simulated duration")
		dagProb   = flag.Float64("dag", 0.2, "probability of DAG-shaped requests")
		commute   = flag.Float64("commute", 0.2, "probability of commutation links")
		faults    = flag.String("faults", "", "fault spec, e.g. loss=0.05,dup=0.01,jitter=20ms,partition=10s@30s,seed=3")
		domains   = flag.String("domains", "", "federate the overlay into administrative domains and commit cross-domain sessions with 2PC, e.g. domains=4,gateways=2,hold=10s,life=30s")
		shards    = flag.Int("shards", 0, "split the DHT keyspace across this many independent rings (0/1 = one flat ring); mutually exclusive with -domains")
		loadBase  = flag.Duration("load", 0, "enable the overload control plane: per-peer processing delay base (M/M/1 inflation with utilization); 0 = off")
		shed      = flag.Float64("shed", 0.8, "with -load: utilization threshold at which peers shed probes (0 disables shedding)")
		specFile  = flag.String("spec", "", "compose a single request from a QoSTalk-style XML spec file")
		traceFile = flag.String("trace", "", "write a deterministic JSONL event trace to this file (.gz compresses)")
		stats     = flag.Bool("stats", false, "print per-layer counter tables, histograms, and a trace summary")
		summarize = flag.String("summarize", "", "summarize an existing JSONL trace file and exit")
		check     = flag.Bool("check", false, "verify trace invariants: on the given trace files, or on this run")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "workers for multi-file -check; 1 = serial")
	)
	flag.Parse()

	if *summarize != "" {
		return summarizeTrace(*summarize)
	}

	if *check && flag.NArg() > 0 {
		return checkTraceFiles(flag.Args(), *parallel)
	}

	if *specFile != "" {
		return composeSpec(*specFile, *seed, *ipNodes, *peers, *functions)
	}

	var fspec *simnet.FaultSpec
	if *faults != "" {
		var err error
		fspec, err = simnet.ParseFaultSpec(*faults)
		if err != nil {
			return err
		}
	}

	var scn *workload.Scenario
	if *scenario != "" {
		var err error
		scn, err = workload.ParseScenario(*scenario)
		if err != nil {
			return err
		}
	}

	var dspec *federation.Spec
	if *domains != "" {
		var err error
		dspec, err = federation.ParseSpec(*domains)
		if err != nil {
			return err
		}
	}
	if *shards > 1 && dspec != nil {
		return fmt.Errorf("-shards and -domains are mutually exclusive: federation already shards the keyspace per domain")
	}

	var (
		trace   obs.Tracer
		tf      *obs.TraceFile
		mem     *obs.MemSink
		reg     *obs.Registry
		met     *obs.Metrics
		tracers obs.MultiTracer
	)
	if *traceFile != "" {
		var err error
		tf, err = obs.CreateTrace(*traceFile)
		if err != nil {
			return err
		}
		tracers = append(tracers, tf)
	}
	if *stats || *check {
		mem = &obs.MemSink{}
		reg = obs.NewRegistry()
		tracers = append(tracers, mem)
	}
	if *stats {
		met = obs.NewMetrics()
	}
	switch len(tracers) {
	case 0:
	case 1:
		trace = tracers[0]
	default:
		trace = tracers
	}

	recCfg := recovery.DefaultConfig()
	bcpCfg := bcp.DefaultConfig()
	if fspec != nil {
		// Protocol hardening for a faulty wire: per-hop probe retransmits
		// and missed-pong hysteresis against spurious failure detection.
		bcpCfg.ProbeAckTimeout = 300 * time.Millisecond
		bcpCfg.ProbeRetries = 2
		recCfg.MissedPongs = 3
	}
	var loadOpts *cluster.LoadOptions
	if *loadBase > 0 {
		loadOpts = &cluster.LoadOptions{
			Model: qos.LoadModel{Base: *loadBase, Cap: 0.95},
			Aware: true,
			Shed:  *shed,
		}
	}
	// Federated sessions recover by presumed abort and bounded leases, not by
	// the per-session recovery manager, so -domains disables it.
	recPtr := &recCfg
	if dspec != nil {
		recPtr = nil
	}
	c := cluster.New(cluster.Options{
		Seed:     *seed,
		IPNodes:  *ipNodes,
		Peers:    *peers,
		Catalog:  catalog(*functions),
		BCP:      bcpCfg,
		Load:     loadOpts,
		Recovery: recPtr,
		Domains:  dspec,
		Shards:   *shards,
		Trace:    trace,
		Obs:      reg,
		Metrics:  met,
	})
	if fspec != nil {
		ids := make([]p2p.NodeID, *peers)
		for i := range ids {
			ids[i] = p2p.NodeID(i)
		}
		c.ApplyFaults(fspec.Plan(ids))
	}
	gen := workload.NewGenerator(workload.Config{
		Catalog:     catalog(*functions),
		Peers:       *peers,
		MinFuncs:    *minFuncs,
		MaxFuncs:    *maxFuncs,
		Budget:      *budget,
		DAGProb:     *dagProb,
		CommuteProb: *commute,
		DelayReqMin: 500,
		DelayReqMax: 2000,
		Scenario:    scn,
	}, c.Rng)

	var ok metrics.Ratio
	var setup, discovery, commitLat metrics.Sample
	attempted, completed, xdomain := 0, 0, 0
	for i := 0; i < *requests; i++ {
		var req *service.Request
		var at time.Duration
		if scn == nil {
			// Draw order (request, then arrival) is load-bearing: it keeps
			// non-scenario runs byte-identical to earlier releases.
			req = gen.Next()
			at = time.Duration(float64(*duration) * c.Rng.Float64() * 0.8)
		} else {
			// Thin arrivals against the scenario's rate curve: a uniform
			// candidate instant survives with probability RateMult/peak, so
			// the accepted arrival density follows the diurnal/flash shape.
			at = time.Duration(float64(*duration) * c.Rng.Float64() * 0.8)
			if c.Rng.Float64()*scn.MaxRateMult(catalog(*functions)) > scn.RateMult(at, catalog(*functions)) {
				continue
			}
			req = gen.NextAt(at)
		}
		c.Sim.Schedule(at-c.Sim.Now(), func() {
			if at < c.Sim.Now() {
				return
			}
			if !c.Net.Alive(req.Source) {
				return // a crashed source composes nothing
			}
			attempted++
			p := c.Peers[int(req.Source)]
			if dspec != nil {
				p.Fed.Compose(req, func(res federation.Result) {
					completed++
					ok.Add(res.Ok)
					if res.Ok {
						setup.AddDuration(res.SetupTime)
						if res.Domains > 1 {
							xdomain++
							commitLat.AddDuration(res.CommitLatency)
						}
					}
				})
				return
			}
			p.Engine.Compose(req, func(res bcp.Result) {
				completed++
				ok.Add(res.Ok)
				if res.Ok {
					setup.AddDuration(res.SetupTime)
					discovery.AddDuration(res.DiscoveryTime)
					p.Recovery.Establish(req, res)
				}
			})
		})
	}
	if *churn > 0 {
		for m := time.Minute; m < *duration; m += time.Minute {
			c.Sim.Schedule(m, func() {
				for _, id := range c.FailFraction(*churn) {
					id := id
					c.Sim.Schedule(2*time.Minute, func() { c.Net.Recover(id) })
				}
			})
		}
	}
	if scn != nil && scn.ChurnRate > 0 {
		// Churn storm: the scenario's rate applies per minute tick inside the
		// window, firing at least once even for sub-minute windows; victims
		// return two minutes later, like -churn's.
		for at := scn.ChurnAt; at < scn.ChurnAt+scn.ChurnDur && at < *duration; at += time.Minute {
			c.Sim.Schedule(at-c.Sim.Now(), func() {
				for _, id := range c.FailFraction(scn.ChurnRate) {
					id := id
					c.Sim.Schedule(2*time.Minute, func() { c.Net.Recover(id) })
				}
			})
		}
	}
	end := *duration
	if dspec != nil {
		// Drain until every federated lease (client give-up, hold expiry,
		// session end of life, commit-TTL backstop) must have resolved, so a
		// reservation still held afterwards is a real leak.
		end += c.Fed.Cfg.Drain()
	}
	c.Sim.Run(end)

	st := c.Net.Stats()
	var rec recovery.Stats
	for _, p := range c.Peers {
		if p.Recovery == nil {
			continue
		}
		s := p.Recovery.Stats()
		rec.FailuresDetected += s.FailuresDetected
		rec.Switchovers += s.Switchovers
		rec.Reactives += s.Reactives
		rec.Dead += s.Dead
	}
	orphans := 0
	if dspec != nil {
		for i, p := range c.Peers {
			if !c.Net.Alive(p2p.NodeID(i)) {
				continue
			}
			if p.Ledger.HardAllocated() != (qos.Resources{}) ||
				p.Ledger.SoftAllocated() != (qos.Resources{}) ||
				p.Engine.Held() > 0 {
				orphans++
			}
		}
	}

	t := metrics.NewTable(fmt.Sprintf("spidersim: %d peers on %d IP nodes, %d requests, budget %d",
		*peers, *ipNodes, *requests, *budget), "metric", "value")
	if scn != nil {
		t.AddRow("scenario", scn.String())
	}
	t.AddRow("success ratio", ok.Value())
	t.AddRow("hung compositions", attempted-completed)
	t.AddRow("avg setup time", time.Duration(setup.Mean()*float64(time.Millisecond)))
	t.AddRow("avg discovery time", time.Duration(discovery.Mean()*float64(time.Millisecond)))
	t.AddRow("messages sent", st.MessagesSent)
	t.AddRow("bytes sent", st.BytesSent)
	t.AddRow("probes sent", st.ByType[bcp.MsgProbe])
	if dspec != nil {
		led := c.Fed.TotalLedger()
		t.AddRow("cross-domain sessions", xdomain)
		t.AddRow("avg commit latency", time.Duration(commitLat.Mean()*float64(time.Millisecond)))
		t.AddRow("fed prepares", led.Prepares)
		t.AddRow("fed commits", led.Commits)
		t.AddRow("fed aborts", led.Aborts+led.Expires)
		t.AddRow("orphaned reservations", orphans)
	} else {
		t.AddRow("failures detected", rec.FailuresDetected)
		t.AddRow("switchovers", rec.Switchovers)
		t.AddRow("reactive recoveries", rec.Reactives)
		t.AddRow("unrecovered failures", rec.Dead)
	}
	t.Render(os.Stdout)

	if tf != nil {
		n := tf.Count()
		if err := tf.Close(); err != nil {
			return fmt.Errorf("trace %s: %w", *traceFile, err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", n, *traceFile)
	}
	if *stats {
		reg.Table("per-layer counters (all nodes)").Render(os.Stdout)
		reg.PerNodeTable("busiest nodes", 10).Render(os.Stdout)
		met.Table("distribution metrics").Render(os.Stdout)
		met.PhaseTable("setup-latency phases (live histograms)").Render(os.Stdout)
		s := obs.Summarize(mem.Events())
		s.Table("trace summary").Render(os.Stdout)
		b := span.NewBuilder()
		for _, ev := range mem.Events() {
			b.Add(ev)
		}
		span.PhaseTable(b.Build(), "setup-latency phases (span trees)").Render(os.Stdout)
	}
	if *check {
		if hung := attempted - completed; hung > 0 {
			return fmt.Errorf("check: %d of %d compositions never called back (hung sessions)", hung, attempted)
		}
		if orphans > 0 {
			return fmt.Errorf("check: %d alive peers left holding reservations after the drain", orphans)
		}
		events := mem.Events()
		vs := obs.Check(events)
		vs = append(vs, obs.CheckTotals(events, reg.Totals())...)
		if err := reportViolations("this run", vs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "check: %d events ok\n", len(events))
	}
	return nil
}

// checkTraceFiles verifies trace invariants on existing (possibly gzipped)
// trace files, loading and checking up to `parallel` files concurrently.
// Results are reported in argument order regardless of completion order.
// Counter cross-checks need the live registry, so file mode runs only the
// event-level invariants.
func checkTraceFiles(paths []string, parallel int) error {
	if parallel > len(paths) {
		parallel = len(paths)
	}
	if parallel < 1 {
		parallel = 1
	}
	type outcome struct {
		n   int
		vs  []obs.Violation
		err error
	}
	outcomes := make([]outcome, len(paths))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				c := obs.NewChecker()
				n := 0
				err := obs.StreamTrace(paths[i], func(ev obs.Event) error {
					n++
					c.Add(ev)
					return nil
				})
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				outcomes[i] = outcome{n: n, vs: c.Finish()}
			}
		}()
	}
	wg.Wait()
	for i, o := range outcomes {
		if o.err != nil {
			return o.err
		}
		if err := reportViolations(paths[i], o.vs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "check: %s: %d events ok\n", paths[i], o.n)
	}
	return nil
}

// reportViolations prints every violation and returns an error if any.
func reportViolations(what string, vs []obs.Violation) error {
	if len(vs) == 0 {
		return nil
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "check: %s: %s\n", what, v)
	}
	return fmt.Errorf("check: %s: %d invariant violation(s)", what, len(vs))
}

// summarizeTrace reads a JSONL trace produced by -trace — streaming, so
// multi-gigabyte sweep traces summarize in constant memory — and prints the
// per-request latency/overhead breakdown plus the span-tree phase table.
func summarizeTrace(path string) error {
	z := obs.NewSummarizer()
	b := span.NewBuilder()
	if err := obs.StreamTrace(path, func(ev obs.Event) error {
		z.Add(ev)
		b.Add(ev)
		return nil
	}); err != nil {
		return err
	}
	s := z.Summary()
	s.Table("trace summary: " + path).Render(os.Stdout)
	s.RequestTable("per-request breakdown").Render(os.Stdout)
	span.PhaseTable(b.Build(), "setup-latency phases").Render(os.Stdout)
	return nil
}

// composeSpec parses one XML composite-service spec, binds random
// endpoints, and composes it on a fresh deployment.
func composeSpec(path string, seed int64, ipNodes, peers, functions int) error {
	req, err := spec.ParseFile(path)
	if err != nil {
		return err
	}
	c := cluster.New(cluster.Options{
		Seed: seed, IPNodes: ipNodes, Peers: peers, Catalog: catalog(functions),
	})
	// Deploy the spec's functions too, in case the catalogue lacks them.
	missing := map[string]bool{}
	for _, fn := range req.FGraph.Functions() {
		if c.Replicas(fn) == 0 {
			missing[fn] = true
		}
	}
	for fn := range missing {
		for i := 0; i < 3; i++ {
			c.Join([]string{fn}, 0)
		}
	}
	c.Sim.Run(c.Sim.Now() + 30*time.Second)

	req.ID = 1
	req.Source, req.Dest = 0, 1
	done := false
	c.Peers[0].Engine.Compose(req, func(res bcp.Result) {
		done = true
		if !res.Ok {
			fmt.Println("no qualified composition")
			return
		}
		fmt.Printf("composed: %s\nQoS: %s\nbackups: %d\nsetup: %v (discovery %v)\n",
			res.Best, res.Best.QoS, len(res.Backups), res.SetupTime, res.DiscoveryTime)
	})
	c.Sim.Run(c.Sim.Now() + 120*time.Second)
	if !done {
		fmt.Println("composition never completed")
	}
	return nil
}

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn%d", i)
	}
	return out
}
