// Command spidernode runs a live in-process SpiderNet deployment — one
// goroutine per peer with injected wide-area latencies, the runtime the
// paper's PlanetLab prototype corresponds to — composes a customizable
// video-streaming session, streams frames through it, and prints the
// timings.
//
// With -admin it serves the live observability plane over HTTP
// (/metrics in Prometheus text format, /snapshot JSON, /debug/pprof/*,
// /healthz) while the deployment runs; -hold keeps the deployment alive
// after the workload finishes so the endpoint can be scraped or profiled.
//
// Example:
//
//	spidernode -hosts 102 -functions 3 -frames 30 -speedup 10 \
//	    -admin 127.0.0.1:9090 -stats -trace run.jsonl.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	spidernet "repro"
	"repro/internal/admin"
	"repro/internal/federation"
	"repro/internal/obs"
)

// previewDomains shows how a federation spec would carve up a live
// deployment: per-domain member ranges, gateway and coordinator assignments,
// and which media functions each domain would home. The live runtime itself
// runs unfederated; the simulator (spidersim -domains) executes the plan.
func previewDomains(spec string, hosts int) error {
	s, err := federation.ParseSpec(spec)
	if err != nil {
		return err
	}
	plan, err := s.Plan(hosts)
	if err != nil {
		return err
	}
	catalog := spidernet.MediaFunctions()
	fmt.Printf("federation plan: %s over %d hosts\n\n", s, hosts)
	for d := 0; d < plan.NumDomains; d++ {
		members := plan.Members[d]
		fmt.Printf("domain %d: peers %d..%d (%d members)\n",
			d, members[0], members[len(members)-1], len(members))
		fmt.Printf("  gateways:    %v\n", plan.Gateways(d))
		fmt.Printf("  coordinator: %d\n", plan.Coordinator(d))
		fmt.Printf("  functions:   %v\n", plan.CatalogFor(d, catalog))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		hosts     = flag.Int("hosts", 102, "number of live peers")
		nfuncs    = flag.Int("functions", 3, "functions to compose (<=6)")
		frames    = flag.Int("frames", 30, "video frames to stream")
		budget    = flag.Int("budget", 20, "probing budget")
		speedup   = flag.Float64("speedup", 10, "wide-area time compression (1 = real time)")
		seed      = flag.Int64("seed", 1, "deployment seed")
		requests  = flag.Int("requests", 3, "compositions to run")
		traceFile = flag.String("trace", "", "write a JSONL event trace to this file (.gz compresses)")
		stats     = flag.Bool("stats", false, "print counter and histogram tables after the workload")
		adminAddr = flag.String("admin", "", "serve /metrics, /snapshot, /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		hold      = flag.Duration("hold", 0, "keep the deployment (and admin endpoint) alive this long after the workload")
		domains   = flag.String("domains", "", "preview how a federation spec (e.g. domains=4,gateways=2) partitions the hosts, then exit")
	)
	flag.Parse()

	if *domains != "" {
		return previewDomains(*domains, *hosts)
	}

	var trace obs.Tracer
	if *traceFile != "" {
		tf, terr := obs.CreateTrace(*traceFile)
		if terr != nil {
			return terr
		}
		trace = tf
		// Registered before the deployment starts, so it runs after the
		// deferred live.Close(): every peer goroutine has stopped emitting
		// by the time the trace flushes, and a flush/close failure still
		// reaches the exit code.
		defer func() {
			n := tf.Count()
			if cerr := tf.Close(); cerr != nil {
				if err == nil {
					err = fmt.Errorf("trace %s: %w", *traceFile, cerr)
				}
				return
			}
			fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", n, *traceFile)
		}()
	}
	reg := spidernet.NewCounterRegistry()
	met := spidernet.NewMetrics()

	live := spidernet.NewLive(spidernet.LiveOptions{
		Hosts:    *hosts,
		Seed:     *seed,
		Speedup:  *speedup,
		Trace:    trace,
		Counters: reg,
		Metrics:  met,
	})
	defer live.Close()

	if *adminAddr != "" {
		srv, err := admin.Serve(*adminAddr, reg, met)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "admin: http://%s/metrics\n", srv.Addr())
	}

	var fns []string
	for _, f := range spidernet.MediaFunctions() {
		if live.Replicas(f) > 0 {
			fns = append(fns, f)
		}
	}
	if len(fns) < *nfuncs {
		return fmt.Errorf("only %d functions have replicas; lower -functions", len(fns))
	}
	fns = fns[:*nfuncs]
	fmt.Printf("live deployment: %d hosts, composing %v\n\n", *hosts, fns)

	for i := 0; i < *requests; i++ {
		req := spidernet.NewRequest().
			Functions(fns...).
			MaxDelay(20*time.Second).
			Bandwidth(200).
			Budget(*budget).
			Between(spidernet.PeerID(2*i), spidernet.PeerID(2*i+1)).
			MustBuild()
		res := live.Compose(req)
		if !res.Ok {
			fmt.Printf("request %d: no qualified composition\n", i)
			continue
		}
		fmt.Printf("request %d: %s\n", i, res.Best)
		fmt.Printf("  setup %v (discovery %v)\n",
			live.Unscale(res.SetupTime).Round(time.Millisecond),
			live.Unscale(res.DiscoveryTime).Round(time.Millisecond))
		got := live.Stream(res.Best, *frames, 640, 480, 60*time.Second)
		fmt.Printf("  streamed %d/%d frames\n", len(got), *frames)
		live.Teardown(res.Best)
	}

	if *stats {
		reg.Table("per-layer counters (all nodes)").Render(os.Stdout)
		reg.PerNodeTable("busiest nodes", 10).Render(os.Stdout)
		met.Table("distribution metrics").Render(os.Stdout)
	}
	if *hold > 0 {
		fmt.Fprintf(os.Stderr, "holding deployment for %v\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}
