// Command spidernode runs a live in-process SpiderNet deployment — one
// goroutine per peer with injected wide-area latencies, the runtime the
// paper's PlanetLab prototype corresponds to — composes a customizable
// video-streaming session, streams frames through it, and prints the
// timings.
//
// Example:
//
//	spidernode -hosts 102 -functions 3 -frames 30 -speedup 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	spidernet "repro"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 102, "number of live peers")
		nfuncs   = flag.Int("functions", 3, "functions to compose (<=6)")
		frames   = flag.Int("frames", 30, "video frames to stream")
		budget   = flag.Int("budget", 20, "probing budget")
		speedup  = flag.Float64("speedup", 10, "wide-area time compression (1 = real time)")
		seed     = flag.Int64("seed", 1, "deployment seed")
		requests = flag.Int("requests", 3, "compositions to run")
	)
	flag.Parse()

	live := spidernet.NewLive(spidernet.LiveOptions{Hosts: *hosts, Seed: *seed, Speedup: *speedup})
	defer live.Close()

	var fns []string
	for _, f := range spidernet.MediaFunctions() {
		if live.Replicas(f) > 0 {
			fns = append(fns, f)
		}
	}
	if len(fns) < *nfuncs {
		fmt.Fprintf(os.Stderr, "only %d functions have replicas; lower -functions\n", len(fns))
		os.Exit(1)
	}
	fns = fns[:*nfuncs]
	fmt.Printf("live deployment: %d hosts, composing %v\n\n", *hosts, fns)

	for i := 0; i < *requests; i++ {
		req := spidernet.NewRequest().
			Functions(fns...).
			MaxDelay(20*time.Second).
			Bandwidth(200).
			Budget(*budget).
			Between(spidernet.PeerID(2*i), spidernet.PeerID(2*i+1)).
			MustBuild()
		res := live.Compose(req)
		if !res.Ok {
			fmt.Printf("request %d: no qualified composition\n", i)
			continue
		}
		fmt.Printf("request %d: %s\n", i, res.Best)
		fmt.Printf("  setup %v (discovery %v)\n",
			live.Unscale(res.SetupTime).Round(time.Millisecond),
			live.Unscale(res.DiscoveryTime).Round(time.Millisecond))
		got := live.Stream(res.Best, *frames, 640, 480, 60*time.Second)
		fmt.Printf("  streamed %d/%d frames\n", len(got), *frames)
		live.Teardown(res.Best)
	}
}
