// Command spidertrace analyzes SpiderNet trace files (.jsonl, optionally
// gzipped): it rebuilds the causal span tree of every composition request and
// reports where the setup time went. Traces are decoded streaming, so
// multi-gigabyte sweep traces analyze in constant memory.
//
// Usage:
//
//	spidertrace <command> [flags] trace.jsonl[.gz]
//
// Commands:
//
//	summary            forest rollup: requests, outcomes, phase totals, orphans
//	phases             per-phase latency breakdown across all requests
//	slow [-k N]        top-k slowest requests with per-phase columns
//	waterfall -req N   span waterfall of one request (federated subs nested)
//	critical [-req N | -k N]   critical path of one request, or of the top-k slowest
//
// Every report is deterministic in the trace contents, so identically seeded
// runs produce byte-identical output — CI diffs reports across reruns.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spidertrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: spidertrace {summary|phases|slow [-k N]|waterfall -req N|critical [-req N|-k N]} trace.jsonl[.gz]")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	k := fs.Int("k", 10, "how many requests to report")
	req := fs.Uint64("req", 0, "request ID to inspect")
	orphans := fs.Bool("orphans", false, "also list unattributable events")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usage()
	}
	path := fs.Arg(0)

	f, err := buildForest(path)
	if err != nil {
		return err
	}

	switch cmd {
	case "summary":
		span.Summary(f, "trace "+path).Render(os.Stdout)
		if *orphans || len(f.Orphans) > 0 {
			span.OrphanTable(f, "orphans").Render(os.Stdout)
		}
	case "phases":
		span.PhaseTable(f, "setup-latency phases").Render(os.Stdout)
	case "slow":
		span.SlowTable(f, *k, fmt.Sprintf("top %d slowest requests", *k)).Render(os.Stdout)
	case "waterfall":
		if *req == 0 {
			return fmt.Errorf("waterfall needs -req N")
		}
		t := f.Tree(*req)
		if t == nil {
			return fmt.Errorf("request %d not in trace", *req)
		}
		fmt.Print(span.Waterfall(t))
	case "critical":
		if *req != 0 {
			t := f.Tree(*req)
			if t == nil {
				return fmt.Errorf("request %d not in trace", *req)
			}
			fmt.Print(span.Critical(t))
			return nil
		}
		for _, t := range f.Slowest(*k) {
			fmt.Print(span.Critical(t))
		}
	default:
		return usage()
	}
	return nil
}

func buildForest(path string) (*span.Forest, error) {
	b := span.NewBuilder()
	if err := obs.StreamTrace(path, func(ev obs.Event) error {
		b.Add(ev)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	return b.Build(), nil
}
