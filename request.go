package spidernet

import (
	"fmt"
	"time"

	"repro/internal/fgraph"
	"repro/internal/qos"
	"repro/internal/service"
)

// RequestBuilder assembles composite service requests fluently. Zero-value
// fields take sensible defaults; Build validates the result.
type RequestBuilder struct {
	id        uint64
	functions []string
	deps      [][2]int
	commutes  [][2]int
	variants  [][]string
	maxDelay  time.Duration
	maxLoss   float64
	bandwidth float64
	cpu, mem  float64
	failReq   float64
	src, dst  PeerID
	budget    int
	err       error
}

var requestSeq uint64

// NewRequest starts a builder with a fresh unique request ID.
func NewRequest() *RequestBuilder {
	requestSeq++
	return &RequestBuilder{
		id:        requestSeq,
		maxDelay:  2 * time.Second,
		bandwidth: 100,
		cpu:       1,
		mem:       10,
		failReq:   0.05,
		budget:    16,
		dst:       1,
	}
}

// ID overrides the auto-assigned request ID.
func (b *RequestBuilder) ID(id uint64) *RequestBuilder { b.id = id; return b }

// Functions declares a linear chain of required functions (F1 → F2 → ...).
// For DAGs use Function and Depends instead.
func (b *RequestBuilder) Functions(fns ...string) *RequestBuilder {
	for _, f := range fns {
		n := len(b.functions)
		b.functions = append(b.functions, f)
		if n > 0 {
			b.deps = append(b.deps, [2]int{n - 1, n})
		}
	}
	return b
}

// Function adds one function node and returns its index for Depends /
// Commutes wiring.
func (b *RequestBuilder) Function(name string) int {
	b.functions = append(b.functions, name)
	return len(b.functions) - 1
}

// Depends declares that function to consumes function from's output.
func (b *RequestBuilder) Depends(from, to int) *RequestBuilder {
	b.deps = append(b.deps, [2]int{from, to})
	return b
}

// Commutes declares that two adjacent functions may be composed in either
// order (a commutation link, §2.1).
func (b *RequestBuilder) Commutes(a, c int) *RequestBuilder {
	b.commutes = append(b.commutes, [2]int{a, c})
	return b
}

// Alternative adds a variant: a linear chain of functions that would also
// satisfy the user. BCP probes the primary graph and every alternative and
// selects the best qualified composition across all of them (conditional
// composition semantics).
func (b *RequestBuilder) Alternative(fns ...string) *RequestBuilder {
	b.variants = append(b.variants, fns)
	return b
}

// MaxDelay sets the end-to-end delay requirement.
func (b *RequestBuilder) MaxDelay(d time.Duration) *RequestBuilder { b.maxDelay = d; return b }

// MaxLoss sets the end-to-end data loss rate requirement in [0,1).
func (b *RequestBuilder) MaxLoss(p float64) *RequestBuilder { b.maxLoss = p; return b }

// Bandwidth sets the kbps required on every service link.
func (b *RequestBuilder) Bandwidth(kbps float64) *RequestBuilder { b.bandwidth = kbps; return b }

// Resources sets the per-component CPU and memory requirement.
func (b *RequestBuilder) Resources(cpu, mem float64) *RequestBuilder {
	b.cpu, b.mem = cpu, mem
	return b
}

// FailureBound sets the acceptable session failure probability F^req used
// by the backup-count formula.
func (b *RequestBuilder) FailureBound(p float64) *RequestBuilder { b.failReq = p; return b }

// Between sets the sending and receiving peers.
func (b *RequestBuilder) Between(src, dst PeerID) *RequestBuilder {
	b.src, b.dst = src, dst
	return b
}

// Budget sets the probing budget β (§4.1): the number of probes BCP may
// spend on this request. Larger budgets find better graphs at higher
// overhead.
func (b *RequestBuilder) Budget(n int) *RequestBuilder { b.budget = n; return b }

// Build validates and returns the request.
func (b *RequestBuilder) Build() (*Request, error) {
	if len(b.functions) == 0 {
		return nil, fmt.Errorf("spidernet: request has no functions")
	}
	fb := fgraph.NewBuilder()
	for _, f := range b.functions {
		fb.AddFunction(f)
	}
	for _, d := range b.deps {
		fb.AddDependency(d[0], d[1])
	}
	for _, c := range b.commutes {
		fb.AddCommutation(c[0], c[1])
	}
	fg, err := fb.Build()
	if err != nil {
		return nil, err
	}
	q := qos.Unbounded()
	q[qos.Delay] = float64(b.maxDelay) / float64(time.Millisecond)
	if b.maxLoss > 0 {
		q[qos.Loss] = qos.LossToAdditive(b.maxLoss)
	}
	var res qos.Resources
	res[qos.CPU] = b.cpu
	res[qos.Memory] = b.mem
	var variants []*fgraph.Graph
	for _, v := range b.variants {
		vb := fgraph.NewBuilder()
		for i, f := range v {
			vb.AddFunction(f)
			if i > 0 {
				vb.AddDependency(i-1, i)
			}
		}
		vg, err := vb.Build()
		if err != nil {
			return nil, err
		}
		variants = append(variants, vg)
	}
	req := &service.Request{
		ID:        b.id,
		FGraph:    fg,
		QoSReq:    q,
		Res:       res,
		Bandwidth: b.bandwidth,
		FailReq:   b.failReq,
		Source:    b.src,
		Dest:      b.dst,
		Budget:    b.budget,
		Variants:  variants,
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// MustBuild is Build that panics on error — convenient in examples.
func (b *RequestBuilder) MustBuild() *Request {
	req, err := b.Build()
	if err != nil {
		panic(err)
	}
	return req
}
