package spidernet

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per figure, reduced scale per iteration) plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Figures report their headline numbers through b.ReportMetric, so
// `go test -bench=.` prints both the running time and the reproduced
// quantities. Full-size runs: `go run ./cmd/spiderbench -fig all [-paper]`.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/dht"
	"repro/internal/experiment"
	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// --- Figure benchmarks -------------------------------------------------

// BenchmarkFig8SuccessRatio regenerates Figure 8: QoS success ratio vs.
// workload for optimal / probing-0.2 / probing-0.1 / random / static.
func BenchmarkFig8SuccessRatio(b *testing.B) {
	cfg := experiment.DefaultFig8Config()
	cfg.IPNodes = 400
	cfg.Peers = 60
	cfg.Functions = 12
	cfg.Workloads = []int{2, 8}
	cfg.TimeUnits = 10
	var res experiment.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiment.Fig8(cfg)
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.Optimal, "optimal-success")
	b.ReportMetric(last.Probing20, "probing02-success")
	b.ReportMetric(last.Random, "random-success")
}

// BenchmarkFig9FailureRecovery regenerates Figure 9: failure frequency
// with/without proactive recovery under 1%-per-unit churn.
func BenchmarkFig9FailureRecovery(b *testing.B) {
	cfg := experiment.DefaultFig9Config()
	cfg.IPNodes = 400
	cfg.Peers = 60
	cfg.Functions = 10
	cfg.Sessions = 12
	cfg.TimeUnits = 20
	var res experiment.Fig9Result
	for i := 0; i < b.N; i++ {
		res = experiment.Fig9(cfg)
	}
	b.ReportMetric(float64(res.DeadWithout), "failures-without")
	b.ReportMetric(float64(res.DeadWithRecovery), "failures-with")
	b.ReportMetric(res.AvgBackups, "avg-backups")
}

// BenchmarkFig10SetupTime regenerates Figure 10: wide-area session setup
// time vs. function count on the live goroutine runtime.
func BenchmarkFig10SetupTime(b *testing.B) {
	cfg := experiment.DefaultFig10Config()
	cfg.Hosts = 60
	cfg.Speedup = 100
	cfg.RequestsPerSize = 4
	var res experiment.Fig10Result
	for i := 0; i < b.N; i++ {
		res = experiment.Fig10(cfg)
	}
	for _, p := range res.Points {
		if p.Succeeded > 0 {
			b.ReportMetric(float64(p.Total)/float64(time.Millisecond),
				"setup-ms-"+itoa(p.Funcs)+"fn")
		}
	}
}

// BenchmarkFig11BudgetSweep regenerates Figure 11: service delay vs.
// probing budget for random / SpiderNet / optimal.
func BenchmarkFig11BudgetSweep(b *testing.B) {
	cfg := experiment.DefaultFig11Config()
	cfg.IPNodes = 500
	cfg.Peers = 60
	cfg.Budgets = []int{4, 60, 400}
	cfg.Requests = 6
	var res experiment.Fig11Result
	for i := 0; i < b.N; i++ {
		res = experiment.Fig11(cfg)
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.Random, "random-delay-ms")
	b.ReportMetric(last.SpiderNet, "spidernet-delay-ms")
	b.ReportMetric(last.Optimal, "optimal-delay-ms")
}

// BenchmarkOverheadVsCentralized regenerates the §6.1 overhead claim:
// BCP's on-demand probing vs. periodic global-view maintenance.
func BenchmarkOverheadVsCentralized(b *testing.B) {
	cfg := experiment.DefaultOverheadConfig()
	cfg.IPNodes = 400
	cfg.Peers = 80
	cfg.Functions = 12
	cfg.Requests = 30
	var res experiment.OverheadResult
	for i := 0; i < b.N; i++ {
		res = experiment.Overhead(cfg)
	}
	b.ReportMetric(res.Ratio, "centralized/bcp-ratio")
}

// --- Ablation benchmarks ------------------------------------------------

func ablationCluster(seed int64, bcpCfg bcp.Config) (*cluster.Cluster, *workload.Generator) {
	catalog := make([]string, 10)
	for i := range catalog {
		catalog[i] = "fn" + itoa(i)
	}
	c := cluster.New(cluster.Options{
		Seed: seed, IPNodes: 400, Peers: 60, Catalog: catalog, BCP: bcpCfg,
	})
	gen := workload.NewGenerator(workload.Config{
		Catalog: catalog, Peers: 60, MinFuncs: 3, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 300, DelayReqMax: 600,
	}, c.Rng)
	return c, gen
}

// runBatch composes n requests and returns (success ratio, mean delay ms).
func runBatch(c *cluster.Cluster, gen *workload.Generator, n int, mutate func(*service.Request)) (float64, float64) {
	okCount, delaySum, delayN := 0, 0.0, 0
	for i := 0; i < n; i++ {
		req := gen.Next()
		if mutate != nil {
			mutate(req)
		}
		eng := c.Peers[int(req.Source)].Engine
		eng.Compose(req, func(res bcp.Result) {
			if res.Ok {
				okCount++
				delaySum += res.Best.QoS[qos.Delay]
				delayN++
				eng.Teardown(res.Best)
			}
		})
		c.Sim.Run(c.Sim.Now() + 30*time.Second)
	}
	avg := 0.0
	if delayN > 0 {
		avg = delaySum / float64(delayN)
	}
	return float64(okCount) / float64(n), avg
}

// BenchmarkAblationQuota compares replica-proportional probing quotas (the
// paper's default) against uniform quotas of 1 probe per function.
func BenchmarkAblationQuota(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, gen := ablationCluster(70, bcp.DefaultConfig())
		okProp, _ := runBatch(c, gen, 15, nil)
		c2, gen2 := ablationCluster(70, bcp.DefaultConfig())
		okUniform, _ := runBatch(c2, gen2, 15, func(r *service.Request) {
			r.Quota = make([]int, r.FGraph.NumFunctions())
			for k := range r.Quota {
				r.Quota[k] = 1
			}
		})
		b.ReportMetric(okProp, "success-proportional")
		b.ReportMetric(okUniform, "success-uniform")
	}
}

// BenchmarkAblationCommutation compares composition with and without
// exchangeable-order exploration on requests that carry commutation links.
func BenchmarkAblationCommutation(b *testing.B) {
	run := func(disable bool) float64 {
		cfg := bcp.DefaultConfig()
		cfg.DisableCommutation = disable
		c := cluster.New(cluster.Options{Seed: 71, IPNodes: 400, Peers: 60, BCP: cfg})
		gen := workload.NewGenerator(workload.Config{
			Catalog: c.FunctionsByReplicas(), Peers: 60,
			MinFuncs: 3, MaxFuncs: 4, CommuteProb: 1.0,
			// Tight delay bounds: composition order decides qualification,
			// so exploring the exchanged order visibly rescues requests.
			Budget: 16, DelayReqMin: 180, DelayReqMax: 330,
		}, newSeededRng(71))
		ok, _ := runBatch(c, gen, 20, nil)
		return ok
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "success-with-commutation")
		b.ReportMetric(run(true), "success-without")
	}
}

// BenchmarkAblationNextHopMetric compares the composite next-hop selection
// metric against random next-hop picks under a small probing budget.
func BenchmarkAblationNextHopMetric(b *testing.B) {
	run := func(random bool) float64 {
		cfg := bcp.DefaultConfig()
		cfg.RandomNextHop = random
		c, gen := ablationCluster(72, cfg)
		for _, p := range c.Peers {
			p.Engine.SelectByDelay = true
		}
		_, delay := runBatch(c, gen, 15, func(r *service.Request) {
			r.Budget = 4 // tight budget: selection quality matters
			r.QoSReq[qos.Delay] = 5000
		})
		return delay
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "delay-composite-metric")
		b.ReportMetric(run(true), "delay-random-nexthop")
	}
}

// BenchmarkAblationBackupSelection compares the paper's overlap-maximizing
// backup selection against fully disjoint backups: switchover recovery time
// should favor overlap.
func BenchmarkAblationBackupSelection(b *testing.B) {
	run := func(disjoint bool) (switchovers int, meanRecoveryMs float64, replacedOut, recoveriesOut int) {
		rc := recovery.DefaultConfig()
		rc.DisjointBackups = disjoint
		c := cluster.New(cluster.Options{
			Seed: 73, IPNodes: 400, Peers: 80, Recovery: &rc,
		})
		gen := workload.NewGenerator(workload.Config{
			Catalog: c.FunctionsByReplicas()[:5], Peers: 80,
			MinFuncs: 3, MaxFuncs: 3, Budget: 60,
			DelayReqMin: 4000, DelayReqMax: 8000,
		}, newSeededRng(73))
		// Establish 10 sessions, then kill one component peer per session.
		var sessions []*service.Request
		for i := 0; i < 10; i++ {
			req := gen.Next()
			p := c.Peers[int(req.Source)]
			p.Engine.Compose(req, func(res bcp.Result) {
				if res.Ok {
					p.Recovery.Establish(req, res)
					sessions = append(sessions, req)
				}
			})
			c.Sim.Run(c.Sim.Now() + 30*time.Second)
		}
		for _, req := range sessions {
			mgr := c.Peers[int(req.Source)].Recovery
			if s := mgr.Session(req.ID); s != nil {
				for _, snap := range s.Active.Comps {
					pr := snap.Comp.Peer
					if pr != req.Source && pr != req.Dest {
						c.Net.Fail(pr)
						break
					}
				}
			}
		}
		c.Sim.Run(c.Sim.Now() + 60*time.Second)
		total, n := 0.0, 0
		replaced, recoveries := 0, 0
		for _, p := range c.Peers {
			if p.Recovery == nil {
				continue
			}
			st := p.Recovery.Stats()
			switchovers += st.Switchovers
			recoveries += st.Switchovers + st.Reactives
			replaced += st.ComponentsReplaced
			for _, ev := range p.Recovery.Events() {
				if ev.Kind == recovery.EventSwitchover {
					total += float64(ev.RecoveryTime) / float64(time.Millisecond)
					n++
				}
			}
		}
		if n > 0 {
			meanRecoveryMs = total / float64(n)
		}
		return switchovers, meanRecoveryMs, replaced, recoveries
	}
	for i := 0; i < b.N; i++ {
		so, rt, rep, recov := run(false)
		b.ReportMetric(float64(so), "switchovers-overlap")
		b.ReportMetric(rt, "recovery-ms-overlap")
		if recov > 0 {
			b.ReportMetric(float64(rep)/float64(recov), "replaced/recovery-overlap")
		}
		so2, rt2, rep2, recov2 := run(true)
		b.ReportMetric(float64(so2), "switchovers-disjoint")
		b.ReportMetric(rt2, "recovery-ms-disjoint")
		if recov2 > 0 {
			b.ReportMetric(float64(rep2)/float64(recov2), "replaced/recovery-disjoint")
		}
	}
}

// BenchmarkAblationSoftReservation measures conflicting admissions with the
// probe-time soft reservation disabled.
func BenchmarkAblationSoftReservation(b *testing.B) {
	run := func(disable bool) float64 {
		cfg := bcp.DefaultConfig()
		cfg.DisableSoftReservation = disable
		var tiny qos.Resources
		tiny[qos.CPU] = 1
		tiny[qos.Memory] = 10
		c := cluster.New(cluster.Options{
			Seed: 74, IPNodes: 400, Peers: 50, Capacity: tiny,
			MinComps: 1, MaxComps: 1, Catalog: []string{"a", "b", "c"},
			BCP: cfg,
		})
		gen := workload.NewGenerator(workload.Config{
			Catalog: []string{"a", "b", "c"}, Peers: 50,
			MinFuncs: 2, MaxFuncs: 2, Budget: 12,
			DelayReqMin: 4000, DelayReqMax: 8000, BandwidthMin: 5, BandwidthMax: 10,
		}, newSeededRng(74))
		// Launch bursts of concurrent requests contending for the same
		// scarce components.
		fails := 0
		for burst := 0; burst < 5; burst++ {
			for k := 0; k < 4; k++ {
				req := gen.Next()
				eng := c.Peers[int(req.Source)].Engine
				eng.Compose(req, func(res bcp.Result) {
					if !res.Ok {
						fails++
					} else {
						c.Sim.Schedule(5*time.Second, func() { eng.Teardown(res.Best) })
					}
				})
			}
			c.Sim.Run(c.Sim.Now() + 60*time.Second)
		}
		return float64(fails)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "setup-failures-with-soft")
		b.ReportMetric(run(true), "setup-failures-without")
	}
}

// --- Microbenchmarks ----------------------------------------------------

// BenchmarkBCPCompose measures one full composition on a 60-peer overlay.
func BenchmarkBCPCompose(b *testing.B) {
	c, gen := ablationCluster(75, bcp.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := gen.Next()
		req.QoSReq[qos.Delay] = 5000
		eng := c.Peers[int(req.Source)].Engine
		eng.Compose(req, func(res bcp.Result) {
			if res.Ok {
				eng.Teardown(res.Best)
			}
		})
		c.Sim.Run(c.Sim.Now() + 30*time.Second)
	}
}

// BenchmarkSimEventDispatch measures the steady-state Schedule→fire cycle
// of the indexed event queue with a warm freelist: one allocation per cycle
// (the cancel closure).
func BenchmarkSimEventDispatch(b *testing.B) {
	sim := simnet.NewSim()
	fn := func() {}
	for i := 0; i < 64; i++ {
		sim.Schedule(0, fn)
	}
	sim.RunUntilIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Microsecond, fn)
		sim.Step()
	}
}

// BenchmarkTopologyPaperScale generates the paper's full 10,000-node IP
// network and builds a 1,000-peer overlay on it — the construction cost every
// -paper experiment pays up front. The edge-set index and the batched
// peer-pair Dijkstra keep this in single-digit seconds.
func BenchmarkTopologyPaperScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := newSeededRng(79)
		g := topology.GeneratePowerLaw(10000, 2, 2, 30, rng)
		ov := topology.BuildOverlay(g, topology.OverlayConfig{NumPeers: 1000, Degree: 4}, rng)
		if ov.N() != 1000 {
			b.Fatal("overlay incomplete")
		}
	}
}

// BenchmarkDHTLookup measures a single decentralized discovery lookup.
func BenchmarkDHTLookup(b *testing.B) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(time.Millisecond), newSeededRng(76))
	nodes := make([]*dht.Node, 200)
	for i := range nodes {
		nodes[i] = dht.New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
	}
	dht.Build(nodes)
	nodes[0].Put(dht.Key("bench"), "x", 64)
	sim.RunUntilIdle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%200].Get(dht.Key("bench"), time.Second, func([]any, int, bool) {})
		sim.RunUntilIdle()
	}
}

// BenchmarkPatternEnumeration measures commutation-pattern expansion.
func BenchmarkPatternEnumeration(b *testing.B) {
	fb := fgraph.NewBuilder()
	for i := 0; i < 6; i++ {
		fb.AddFunction("f" + itoa(i))
	}
	for i := 0; i < 5; i++ {
		fb.AddDependency(i, i+1)
	}
	fb.AddCommutation(1, 2)
	fb.AddCommutation(3, 4)
	fb.AddCommutation(4, 5)
	g, err := fb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Patterns(16); len(got) < 4 {
			b.Fatal("too few patterns")
		}
	}
}

// BenchmarkOverlayRoute measures overlay-layer shortest-path routing with
// the per-source cache.
func BenchmarkOverlayRoute(b *testing.B) {
	rng := newSeededRng(77)
	g := topology.GeneratePowerLaw(2000, 2, 2, 30, rng)
	ov := topology.BuildOverlay(g, topology.OverlayConfig{NumPeers: 300, Degree: 4}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ov.Route(i%300, (i*7+1)%300); !ok {
			b.Fatal("no route")
		}
	}
}

// BenchmarkCostFunction measures one ψ evaluation.
func BenchmarkCostFunction(b *testing.B) {
	fg := fgraph.Linear("a", "b", "c")
	var avail qos.Resources
	avail[qos.CPU] = 10
	avail[qos.Memory] = 100
	g := &service.Graph{Pattern: fg, Comps: map[int]service.Snapshot{}}
	for i := 0; i < 3; i++ {
		g.Comps[i] = service.Snapshot{
			Comp:  service.Component{ID: "c" + itoa(i), Peer: p2p.NodeID(i)},
			Avail: avail,
		}
		g.Links = append(g.Links, service.LinkSnapshot{FromFn: i - 1, ToFn: i, BandAvail: 1000})
	}
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	req := &service.Request{FGraph: fg, Res: res, Bandwidth: 100, Budget: 1}
	w := service.DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := g.Cost(w, req); c <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// --- helpers -------------------------------------------------------------

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func newSeededRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
