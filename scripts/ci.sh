#!/bin/sh
# ci.sh — the repo's full verification gate: vet, build, race-enabled tests.
# Run from anywhere; it cd's to the repo root. Exit status is non-zero on
# the first failing step.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ci ok"
