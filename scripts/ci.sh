#!/bin/sh
# ci.sh — the repo's full verification gate: vet, build, race-enabled tests.
# Run from anywhere; it cd's to the repo root. Exit status is non-zero on
# the first failing step.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Trace gate: the same seed must produce byte-identical JSONL traces, the
# traces must satisfy the protocol invariants (spidersim -check), and the
# gzip trace path must round-trip to the same events.
echo "== trace determinism + invariant gate"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/spidersim" ./cmd/spidersim
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/a.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/b.jsonl" > /dev/null
cmp "$tmp/a.jsonl" "$tmp/b.jsonl"
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/c.jsonl.gz" > /dev/null
gunzip -c "$tmp/c.jsonl.gz" | cmp - "$tmp/a.jsonl"
"$tmp/spidersim" -check "$tmp/a.jsonl" "$tmp/c.jsonl.gz"
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -check > /dev/null

# Chaos gate: 20% loss (plus duplication and jitter) on every link. The
# 100-request workload must finish with zero hung compositions, the trace
# must satisfy the probe-conservation invariants with faults accounted, and
# the fault plane must be deterministic: same seed, byte-identical trace.
echo "== chaos gate (loss=0.2, dup=0.05, jitter=10ms)"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/f1.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/f2.jsonl" > /dev/null
cmp "$tmp/f1.jsonl" "$tmp/f2.jsonl"

# Parallel-runner gate: the figure pipeline must produce byte-identical
# tables and traces at any worker count.
echo "== parallel determinism gate"
go build -o "$tmp/spiderbench" ./cmd/spiderbench
"$tmp/spiderbench" -fig 11 -parallel 1 -trace "$tmp/p1.jsonl" > "$tmp/p1.txt" 2> /dev/null
"$tmp/spiderbench" -fig 11 -parallel 8 -trace "$tmp/p8.jsonl" > "$tmp/p8.txt" 2> /dev/null
cmp "$tmp/p1.txt" "$tmp/p8.txt"
cmp "$tmp/p1.jsonl" "$tmp/p8.jsonl"

# Advisory bench step: compare a fresh microbenchmark run against the newest
# committed BENCH_*.json baseline. Never fails the gate — benchmark noise on
# shared CI hardware is not a correctness signal — but prints regressions so
# a real slowdown is visible in the log.
echo "== bench diff vs committed baseline (advisory)"
baseline="$(ls BENCH_*.json 2> /dev/null | sort | tail -1 || true)"
if [ -n "$baseline" ] && command -v jq > /dev/null; then
    "$tmp/spiderbench" -bench -benchdir "$tmp" 2> /dev/null
    fresh="$(ls "$tmp"/BENCH_*.json | sort | tail -1)"
    scripts/bench_diff.sh -t 0.25 "$baseline" "$fresh" || \
        echo "bench: regressions above 25% tolerance (advisory only)"
else
    echo "bench: skipped (no baseline or no jq)"
fi

echo "== ci ok"
