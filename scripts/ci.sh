#!/bin/sh
# ci.sh — the repo's full verification gate: vet, build, race-enabled tests.
# Run from anywhere; it cd's to the repo root. Exit status is non-zero on
# the first failing step.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Coverage gate: per-package statement coverage must stay at or above the
# floor. Packages without test files are reported but do not fail the gate;
# adding their first test pulls them in automatically.
echo "== coverage gate (floor 50%)"
# internal/workload and internal/baselines feed the stress acceptance gates,
# so they must be measured — a package that loses its test files drops out of
# the floor silently, and the awk END block catches that for these two.
go test -cover ./... | awk '
    $1 != "ok" && /coverage:/ { printf "coverage: %-32s (no test files)\n", $1; next }
    $1 == "ok" && /no statements/ { printf "coverage: %-32s (no statements)\n", $2; next }
    $1 == "ok" && /coverage:/ {
        for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1)
        sub(/%.*/, "", pct)
        printf "coverage: %-32s %5.1f%%\n", $2, pct
        if (pct + 0 < 50) { printf "coverage: %s below 50%% floor\n", $2; bad = 1 }
        measured[$2] = 1
    }
    END {
        split("repro/internal/workload repro/internal/baselines", need, " ")
        for (i in need) if (!(need[i] in measured)) {
            printf "coverage: %s has no measured coverage (tests gone?)\n", need[i]; bad = 1
        }
        exit bad
    }'

# Memory-budget gate: building the 100k-node CSR graph plus the 10k-peer
# compact overlay must fit the live-heap budget asserted by the test (64 MB;
# measured ~10 MB). A failure means a dense structure crept back into the
# frozen representation — most likely the O(peers^2) latency matrix or a
# per-node allocation in the Dijkstra hot path.
echo "== memory budget gate (100k nodes / 10k peers)"
go test -run TestMemoryBudget100k -count=1 ./internal/topology/

# Scale1m-slice gate: one CI-sized cell of the million-node capacity sweep
# (100k-IP-node/10k-peer topology with an 8-entry route cache, plus a
# 10k-peer sorted-ring discovery plane). TestScale1mSliceBudget enforces
# wall-clock ceilings, a live-heap budget, and all-lookups-resolve;
# TestScale1mSliceDeterministic requires byte-identical structural columns
# across a rerun and across worker counts. A failure means superlinear
# construction or a dense structure crept back into the scale path.
echo "== scale1m slice gate (build ceilings + heap budget + rerun determinism)"
go test -run 'TestScale1mSlice' -count=1 ./internal/experiment/

# Trace gate: the same seed must produce byte-identical JSONL traces, the
# traces must satisfy the protocol invariants (spidersim -check), and the
# gzip trace path must round-trip to the same events.
echo "== trace determinism + invariant gate"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/spidersim" ./cmd/spidersim
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/a.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/b.jsonl" > /dev/null
cmp "$tmp/a.jsonl" "$tmp/b.jsonl"
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/c.jsonl.gz" > /dev/null
gunzip -c "$tmp/c.jsonl.gz" | cmp - "$tmp/a.jsonl"
"$tmp/spidersim" -check "$tmp/a.jsonl" "$tmp/c.jsonl.gz"
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -check > /dev/null

# Span gate: the causal span analyzer must be deterministic — the same trace
# must render byte-identical reports across runs, and the committed golden
# trace must render exactly the committed golden report. A diff here means
# either the span builder changed (regenerate testdata/golden_spans.txt with
# the command below) or nondeterminism crept into tree construction.
echo "== span determinism gate"
go build -o "$tmp/spidertrace" ./cmd/spidertrace
for cmd in summary phases critical; do
    "$tmp/spidertrace" "$cmd" "$tmp/a.jsonl" > "$tmp/span1.$cmd.txt"
    "$tmp/spidertrace" "$cmd" "$tmp/a.jsonl" > "$tmp/span2.$cmd.txt"
    cmp "$tmp/span1.$cmd.txt" "$tmp/span2.$cmd.txt"
done
{
    "$tmp/spidertrace" phases testdata/golden_trace.jsonl.gz
    "$tmp/spidertrace" critical testdata/golden_trace.jsonl.gz
} > "$tmp/golden_spans.txt"
cmp "$tmp/golden_spans.txt" testdata/golden_spans.txt

# Chaos gate: 20% loss (plus duplication and jitter) on every link. The
# 100-request workload must finish with zero hung compositions, the trace
# must satisfy the probe-conservation invariants with faults accounted, and
# the fault plane must be deterministic: same seed, byte-identical trace.
echo "== chaos gate (loss=0.2, dup=0.05, jitter=10ms)"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/f1.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/f2.jsonl" > /dev/null
cmp "$tmp/f1.jsonl" "$tmp/f2.jsonl"

# Flash-crowd chaos cell: the same faulty wire while a flash crowd piles
# onto one function under a heavy-tailed popularity curve. Zero hung
# compositions and a clean invariant check are required as usual, and the
# scenario plane must be as deterministic as the fault plane.
echo "== chaos gate: flash-crowd cell"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -scenario "zipf=1.1,flash=fn0:6@60s+60s" \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/fc1.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -scenario "zipf=1.1,flash=fn0:6@60s+60s" \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/fc2.jsonl" > /dev/null
cmp "$tmp/fc1.jsonl" "$tmp/fc2.jsonl"

# Sharding gate: a 16-shard keyspace under the same chaos mix must finish
# with zero hung compositions and a clean invariant check, stay byte-
# deterministic across re-runs, and — with a single shard — produce exactly
# the trace the unsharded ring produces (Shards=1 homes every key locally).
# The 4m horizon leaves room for late recovery re-compositions: probe
# conservation requires every in-flight cross-ring get to resolve (deliver
# or final-timeout) before the sim stops, and recovery can re-compose up to
# 0.8*duration after the last scheduled arrival.
echo "== sharded discovery gate (16 shards under chaos; 1 shard == unsharded)"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 64 -requests 100 -duration 4m \
    -shards 16 -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check \
    -trace "$tmp/sh1.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 64 -requests 100 -duration 4m \
    -shards 16 -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check \
    -trace "$tmp/sh2.jsonl" > /dev/null
cmp "$tmp/sh1.jsonl" "$tmp/sh2.jsonl"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 64 -requests 40 -duration 2m \
    -trace "$tmp/sh0.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 64 -requests 40 -duration 2m \
    -shards 1 -trace "$tmp/sh1eq.jsonl" > /dev/null
cmp "$tmp/sh0.jsonl" "$tmp/sh1eq.jsonl"

# Federation chaos gate: partition one whole domain across the commit window
# of a federated run. After the heal and a full lease drain the run must show
# zero hung compositions and zero orphaned reservations (-check enforces
# both, plus the 2PC lifecycle trace invariant), and the fault plane must
# stay deterministic: same seed, byte-identical trace.
echo "== federation chaos gate (domain partition during commit)"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -functions 12 -requests 40 \
    -duration 60s -domains "domains=3,gateways=2,hold=8s,life=8s" \
    -faults "partition=20s@15s,seed=4" -check -trace "$tmp/d1.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -functions 12 -requests 40 \
    -duration 60s -domains "domains=3,gateways=2,hold=8s,life=8s" \
    -faults "partition=20s@15s,seed=4" -check -trace "$tmp/d2.jsonl" > /dev/null
cmp "$tmp/d1.jsonl" "$tmp/d2.jsonl"

# Parallel-runner gate: the figure pipeline must produce byte-identical
# tables and traces at any worker count.
echo "== parallel determinism gate"
go build -o "$tmp/spiderbench" ./cmd/spiderbench
"$tmp/spiderbench" -fig 11 -parallel 1 -trace "$tmp/p1.jsonl" > "$tmp/p1.txt" 2> /dev/null
"$tmp/spiderbench" -fig 11 -parallel 8 -trace "$tmp/p8.jsonl" > "$tmp/p8.txt" 2> /dev/null
cmp "$tmp/p1.txt" "$tmp/p8.txt"
cmp "$tmp/p1.jsonl" "$tmp/p8.jsonl"

# Scale gate: the offered-load sweep (load-aware vs load-blind under
# processing-delay inflation) must also be byte-identical across re-runs and
# worker counts, trace included.
echo "== scale experiment determinism gate"
"$tmp/spiderbench" -fig scale -parallel 1 -trace "$tmp/s1.jsonl" > "$tmp/s1.txt" 2> /dev/null
"$tmp/spiderbench" -fig scale -parallel 8 -trace "$tmp/s8.jsonl" > "$tmp/s8.txt" 2> /dev/null
"$tmp/spiderbench" -fig scale -parallel 8 -trace "$tmp/s8b.jsonl" > "$tmp/s8b.txt" 2> /dev/null
cmp "$tmp/s1.txt" "$tmp/s8.txt"
cmp "$tmp/s1.jsonl" "$tmp/s8.jsonl"
cmp "$tmp/s8.txt" "$tmp/s8b.txt"
cmp "$tmp/s8.jsonl" "$tmp/s8b.jsonl"

# Stress gate: the adversarial-workload sweep (Zipf/diurnal/flash/churn ×
# spidernet/greedy/random/backtracking/community) must be byte-identical
# across worker counts and across re-runs, trace included. The acceptance
# thresholds themselves (spidernet ≥ strawmen, p99 bounds) live in
# TestStressGates, which `go test ./...` above already enforced.
echo "== stress experiment determinism gate"
"$tmp/spiderbench" -fig stress -parallel 1 -trace "$tmp/st1.jsonl" > "$tmp/st1.txt" 2> /dev/null
"$tmp/spiderbench" -fig stress -parallel 8 -trace "$tmp/st8.jsonl" > "$tmp/st8.txt" 2> /dev/null
"$tmp/spiderbench" -fig stress -parallel 8 -trace "$tmp/st8b.jsonl" > "$tmp/st8b.txt" 2> /dev/null
cmp "$tmp/st1.txt" "$tmp/st8.txt"
cmp "$tmp/st1.jsonl" "$tmp/st8.jsonl"
cmp "$tmp/st8.txt" "$tmp/st8b.txt"
cmp "$tmp/st8.jsonl" "$tmp/st8b.jsonl"

# Federate experiment gate: the cross-domain 2PC sweep must be byte-identical
# across worker counts, and no cell may leave an orphaned reservation (the
# orphans column is part of the compared output).
echo "== federate experiment determinism gate"
"$tmp/spiderbench" -fig federate -parallel 1 -trace "$tmp/e1.jsonl" > "$tmp/e1.txt" 2> /dev/null
"$tmp/spiderbench" -fig federate -parallel 8 -trace "$tmp/e8.jsonl" > "$tmp/e8.txt" 2> /dev/null
cmp "$tmp/e1.txt" "$tmp/e8.txt"
cmp "$tmp/e1.jsonl" "$tmp/e8.jsonl"
if awk 'NR > 2 && $NF != 0 { exit 1 }' "$tmp/e1.txt"; then
    echo "federate: zero orphaned reservations in every cell"
else
    echo "federate: orphaned reservations detected"; exit 1
fi

# Bench gate: compare a fresh microbenchmark run against the newest committed
# BENCH_*.json baseline. The compose hot path must not regress more than 15%
# — federation added a per-allocation TTL branch to it, and this gate proves
# the unfederated fast path stays free. The remaining ops are advisory at
# 25%: benchmark noise on shared CI hardware is not a correctness signal, but
# regressions stay visible in the log.
echo "== bench diff vs committed baseline (bcp/compose failing at 15%)"
baseline="$(ls BENCH_*.json 2> /dev/null | sort | tail -1 || true)"
if [ -n "$baseline" ] && command -v jq > /dev/null; then
    "$tmp/spiderbench" -bench -benchdir "$tmp" 2> /dev/null
    fresh="$(ls "$tmp"/BENCH_*.json | sort | tail -1)"
    scripts/bench_diff.sh -t 0.15 -o bcp/compose "$baseline" "$fresh"
    scripts/bench_diff.sh -t 0.25 "$baseline" "$fresh" || \
        echo "bench: regressions above 25% tolerance (advisory only)"
else
    echo "bench: skipped (no baseline or no jq)"
fi

echo "== ci ok"
