#!/bin/sh
# ci.sh — the repo's full verification gate: vet, build, race-enabled tests.
# Run from anywhere; it cd's to the repo root. Exit status is non-zero on
# the first failing step.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Trace gate: the same seed must produce byte-identical JSONL traces, the
# traces must satisfy the protocol invariants (spidersim -check), and the
# gzip trace path must round-trip to the same events.
echo "== trace determinism + invariant gate"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/spidersim" ./cmd/spidersim
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/a.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/b.jsonl" > /dev/null
cmp "$tmp/a.jsonl" "$tmp/b.jsonl"
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -trace "$tmp/c.jsonl.gz" > /dev/null
gunzip -c "$tmp/c.jsonl.gz" | cmp - "$tmp/a.jsonl"
"$tmp/spidersim" -check "$tmp/a.jsonl" "$tmp/c.jsonl.gz"
"$tmp/spidersim" -seed 7 -ipnodes 600 -peers 80 -requests 30 -duration 3m \
    -check > /dev/null

# Chaos gate: 20% loss (plus duplication and jitter) on every link. The
# 100-request workload must finish with zero hung compositions, the trace
# must satisfy the probe-conservation invariants with faults accounted, and
# the fault plane must be deterministic: same seed, byte-identical trace.
echo "== chaos gate (loss=0.2, dup=0.05, jitter=10ms)"
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/f1.jsonl" > /dev/null
"$tmp/spidersim" -seed 7 -ipnodes 400 -peers 60 -requests 100 -duration 3m \
    -faults "loss=0.2,dup=0.05,jitter=10ms,seed=3" -check -trace "$tmp/f2.jsonl" > /dev/null
cmp "$tmp/f1.jsonl" "$tmp/f2.jsonl"

echo "== ci ok"
