#!/bin/sh
# bench_diff.sh — compare two BENCH_*.json files produced by
# `spiderbench -bench` and report per-op regressions.
#
# Usage: bench_diff.sh [-t tolerance] [-o op] OLD.json NEW.json
#
#   -t tolerance   fractional slowdown allowed before an op counts as a
#                  regression (default 0.15 = 15%). Applied to both ns/op
#                  and allocs/op.
#   -o op          compare only this op (exact name, e.g. bcp/compose);
#                  exits 2 if either file lacks it. Repeatable gates pin
#                  a tight tolerance on one hot path this way without
#                  subjecting every op to it.
#
# Only ops present in both files are compared; ops that appear or disappear
# are listed informationally. Exit status is 1 if any common op regressed
# beyond the tolerance, 0 otherwise. Improvements are printed but never fail.
set -eu

tol=0.15
only=""
while getopts t:o: opt; do
    case "$opt" in
    t) tol="$OPTARG" ;;
    o) only="$OPTARG" ;;
    *) echo "usage: $0 [-t tolerance] [-o op] OLD.json NEW.json" >&2; exit 2 ;;
    esac
done
shift $((OPTIND - 1))

if [ $# -ne 2 ]; then
    echo "usage: $0 [-t tolerance] [-o op] OLD.json NEW.json" >&2
    exit 2
fi
old="$1"
new="$2"
for f in "$old" "$new"; do
    [ -r "$f" ] || { echo "bench_diff: cannot read $f" >&2; exit 2; }
done

command -v jq > /dev/null || { echo "bench_diff: jq not found" >&2; exit 2; }

# Flatten both files to "op ns_per_op allocs_per_op" lines.
flat() {
    jq -r '.results[] | "\(.op) \(.ns_per_op) \(.allocs_per_op)"' "$1"
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
flat "$old" | sort > "$tmp/old"
flat "$new" | sort > "$tmp/new"

if [ -n "$only" ]; then
    awk -v op="$only" '$1 == op' "$tmp/old" > "$tmp/old.f" && mv "$tmp/old.f" "$tmp/old"
    awk -v op="$only" '$1 == op' "$tmp/new" > "$tmp/new.f" && mv "$tmp/new.f" "$tmp/new"
    if ! [ -s "$tmp/old" ] || ! [ -s "$tmp/new" ]; then
        echo "bench_diff: op $only missing from one of the files" >&2
        exit 2
    fi
fi

join "$tmp/old" "$tmp/new" > "$tmp/common"
join -v1 "$tmp/old" "$tmp/new" | awk '{print "  only in old: " $1}'
join -v2 "$tmp/old" "$tmp/new" | awk '{print "  only in new: " $1}'

awk -v tol="$tol" '
function pct(o, n) { return o > 0 ? (n - o) * 100.0 / o : 0 }
{
    op = $1; ons = $2; oal = $3; nns = $4; nal = $5
    dns = pct(ons, nns); dal = pct(oal, nal)
    flag = ""
    if (nns > ons * (1 + tol) || nal > oal * (1 + tol)) { flag = "  REGRESSION"; bad = 1 }
    printf "%-20s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %6.0f -> %6.0f (%+6.1f%%)%s\n",
        op, ons, nns, dns, oal, nal, dal, flag
}
END { exit bad ? 1 : 0 }
' "$tmp/common"
