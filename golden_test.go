package spidernet

import (
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden end-to-end trace instead of comparing against it")

const goldenPath = "testdata/golden_trace.jsonl.gz"

// goldenScenario replays the canonical end-to-end scenario — a small
// deployment with the overload control plane on, composing, holding, and
// tearing down a fixed request schedule — and returns the full JSONL event
// trace it emits.
func goldenScenario() []byte {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	c := cluster.New(cluster.Options{
		Seed:    7,
		IPNodes: 300,
		Peers:   30,
		Catalog: goldenCatalog(12),
		BCP:     bcp.DefaultConfig(),
		Load: &cluster.LoadOptions{
			Model: qos.LoadModel{Base: 5 * time.Millisecond, Cap: 0.95},
			Aware: true,
			Shed:  0.8,
		},
		Trace: sink,
	})
	gen := workload.NewGenerator(workload.Config{
		Catalog:     goldenCatalog(12),
		Peers:       30,
		MinFuncs:    2,
		MaxFuncs:    3,
		Budget:      8,
		DelayReqMin: 200,
		DelayReqMax: 600,
	}, rand.New(rand.NewSource(99)))

	for i := 0; i < 12; i++ {
		req := gen.Next()
		at := time.Duration(i) * 400 * time.Millisecond
		c.Sim.Schedule(at-c.Sim.Now(), func() {
			eng := c.Peers[int(req.Source)].Engine
			eng.Compose(req, func(res bcp.Result) {
				if res.Ok {
					c.Sim.Schedule(5*time.Second, func() { eng.Teardown(res.Best) })
				}
			})
		})
	}
	c.Sim.Run(30 * time.Second)
	if err := sink.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func goldenCatalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn%d", i)
	}
	return out
}

// TestGoldenTrace is the end-to-end regression gate: the canonical scenario
// must reproduce the committed trace byte for byte. Run with -update after
// an intentional protocol change and review the diff like any other code.
func TestGoldenTrace(t *testing.T) {
	got := goldenScenario()
	if len(got) == 0 {
		t.Fatal("golden scenario emitted no events")
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		var gz bytes.Buffer
		w := gzip.NewWriter(&gz)
		if _, err := w.Write(got); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, gz.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %d bytes JSONL (%d gzipped) -> %s", len(got), gz.Len(), goldenPath)
		return
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("missing golden trace (run `go test -run TestGoldenTrace -update` to create it): %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	if bytes.Equal(got, want) {
		return
	}
	// Locate the first divergent line so the failure is actionable.
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s\n(%d vs %d lines; -update rewrites after intentional changes)",
				i+1, gotLines[i], wantLines[i], len(gotLines), len(wantLines))
		}
	}
	t.Fatalf("trace is a strict prefix/extension of golden: %d vs %d lines (-update rewrites after intentional changes)",
		len(gotLines), len(wantLines))
}

// TestGoldenTraceInvariants keeps the committed artifact honest: the golden
// trace itself must satisfy the protocol invariant checker.
func TestGoldenTraceInvariants(t *testing.T) {
	events, err := obs.LoadTrace(goldenPath)
	if err != nil {
		t.Skipf("golden trace unreadable (run -update first): %v", err)
	}
	if vs := obs.Check(events); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("golden trace violates invariant: %v", v)
		}
	}
}
